//! Lowering from the MiniLang AST to `refine-ir`.
//!
//! Every scalar variable becomes a hoisted entry-block alloca (mem2reg
//! promotes the non-escaping ones to SSA at `-O2`, exactly the Clang
//! pattern); arrays become allocas or globals accessed through `PtrAdd`.

use crate::ast::*;
use crate::FrontError;
use refine_ir::{
    CastOp, FBinOp, FPred, FuncBuilder, FuncId, GlobalId, GlobalInit, IBinOp, IPred, Intrinsic,
    Module, Operand, Ty,
};
use std::collections::HashMap;

/// Expression result classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ETy {
    /// 64-bit integer.
    I,
    /// binary64.
    F,
    /// Boolean (`i1`), produced by comparisons.
    B,
}

#[derive(Debug, Clone, Copy)]
enum VarInfo {
    Scalar { ptr: Operand, is_float: bool },
    Array { ptr: Operand, is_float: bool },
}

/// Lower a parsed program into an IR module.
pub fn lower_program(prog: &Program) -> Result<Module, FrontError> {
    let mut module = Module::new();
    let mut globals: HashMap<String, (GlobalId, bool, bool)> = HashMap::new();
    for g in &prog.globals {
        if globals.contains_key(&g.name) {
            return Err(FrontError { line: g.line, msg: format!("duplicate global `{}`", g.name) });
        }
        let gid = module.add_global(g.name.clone(), GlobalInit::Zero(g.words));
        globals.insert(g.name.clone(), (gid, g.is_float, g.is_array));
    }

    // Pre-register signatures so calls (including recursion and forward
    // references) resolve by index.
    let mut sigs: HashMap<String, (FuncId, Vec<TypeAnn>, TypeAnn)> = HashMap::new();
    for (i, f) in prog.funcs.iter().enumerate() {
        if sigs.contains_key(&f.name) {
            return Err(FrontError { line: f.line, msg: format!("duplicate function `{}`", f.name) });
        }
        sigs.insert(
            f.name.clone(),
            (refine_ir::FuncId(i as u32), f.params.iter().map(|(_, t)| *t).collect(), f.ret),
        );
    }
    if !sigs.contains_key("main") {
        return Err(FrontError { line: 0, msg: "program must define fn main()".into() });
    }

    for f in prog.funcs.iter() {
        let lowered = FnLowerer::new(&mut module, &globals, &sigs, f).lower()?;
        module.add_function(lowered);
    }
    Ok(module)
}

fn ir_ty(t: TypeAnn) -> Ty {
    match t {
        TypeAnn::Int => Ty::I64,
        TypeAnn::Float => Ty::F64,
    }
}

struct FnLowerer<'a> {
    module: &'a mut Module,
    globals: &'a HashMap<String, (GlobalId, bool, bool)>,
    sigs: &'a HashMap<String, (FuncId, Vec<TypeAnn>, TypeAnn)>,
    def: &'a FnDef,
    b: FuncBuilder,
    scopes: Vec<HashMap<String, VarInfo>>,
}

impl<'a> FnLowerer<'a> {
    fn new(
        module: &'a mut Module,
        globals: &'a HashMap<String, (GlobalId, bool, bool)>,
        sigs: &'a HashMap<String, (FuncId, Vec<TypeAnn>, TypeAnn)>,
        def: &'a FnDef,
    ) -> Self {
        let b = FuncBuilder::new(
            def.name.clone(),
            def.params.iter().map(|(_, t)| ir_ty(*t)).collect(),
            Some(ir_ty(def.ret)),
        );
        FnLowerer { module, globals, sigs, def, b, scopes: vec![HashMap::new()] }
    }

    fn err<T>(&self, line: u32, msg: impl Into<String>) -> Result<T, FrontError> {
        Err(FrontError { line, msg: msg.into() })
    }

    fn lookup(&self, name: &str) -> Option<VarInfo> {
        for s in self.scopes.iter().rev() {
            if let Some(v) = s.get(name) {
                return Some(*v);
            }
        }
        self.globals.get(name).map(|(gid, is_float, is_array)| {
            if *is_array {
                VarInfo::Array { ptr: Operand::Global(*gid), is_float: *is_float }
            } else {
                VarInfo::Scalar { ptr: Operand::Global(*gid), is_float: *is_float }
            }
        })
    }

    fn declare_scalar(&mut self, name: &str, is_float: bool) -> Operand {
        let ptr = self.b.alloca_in_entry(1);
        self.scopes
            .last_mut()
            .unwrap()
            .insert(name.to_string(), VarInfo::Scalar { ptr, is_float });
        ptr
    }

    fn lower(mut self) -> Result<refine_ir::Function, FrontError> {
        // Land parameters in allocas so they are assignable.
        let params = self.b.params();
        for ((pname, pty), pval) in self.def.params.iter().zip(params) {
            let ptr = self.declare_scalar(pname, *pty == TypeAnn::Float);
            self.b.store(ptr, pval, ir_ty(*pty));
        }
        let body = self.def.body.clone();
        self.lower_stmts(&body)?;
        if !self.b.is_terminated() {
            let zero = match self.def.ret {
                TypeAnn::Int => Operand::ConstI(0),
                TypeAnn::Float => Operand::ConstF(0.0),
            };
            self.b.ret(Some(zero));
        }
        Ok(self.b.finish())
    }

    fn lower_stmts(&mut self, stmts: &[Stmt]) -> Result<(), FrontError> {
        for s in stmts {
            if self.b.is_terminated() {
                break; // dead code after return
            }
            self.lower_stmt(s)?;
        }
        Ok(())
    }

    fn lower_stmt(&mut self, s: &Stmt) -> Result<(), FrontError> {
        match s {
            Stmt::Let(name, ann, init, line) => {
                let (v, ty) = self.lower_expr(init)?;
                let want_float = match ann {
                    Some(TypeAnn::Float) => true,
                    Some(TypeAnn::Int) => false,
                    None => ty == ETy::F,
                };
                let v = if want_float { self.coerce_f(v, ty) } else { self.coerce_i(v, ty) };
                let _ = line;
                let ptr = self.declare_scalar(name, want_float);
                self.b.store(ptr, v, if want_float { Ty::F64 } else { Ty::I64 });
            }
            Stmt::LetArr(name, n, is_float, _line) => {
                let ptr = self.b.alloca_in_entry(*n);
                self.scopes
                    .last_mut()
                    .unwrap()
                    .insert(name.clone(), VarInfo::Array { ptr, is_float: *is_float });
                // Stack arrays are zero-initialized (the interpreter's and
                // machine's fresh stacks are zeroed; a real program would
                // memset — keep semantics identical everywhere).
            }
            Stmt::Assign(name, e, line) => {
                let info = match self.lookup(name) {
                    Some(i) => i,
                    None => {
                        // Implicit int declaration, used by for-loop headers.
                        let (v, ty) = self.lower_expr(e)?;
                        let v = self.coerce_i(v, ty);
                        let ptr = self.declare_scalar(name, false);
                        self.b.store(ptr, v, Ty::I64);
                        return Ok(());
                    }
                };
                match info {
                    VarInfo::Scalar { ptr, is_float } => {
                        let (v, ty) = self.lower_expr(e)?;
                        let v = if is_float { self.coerce_f(v, ty) } else { self.coerce_i(v, ty) };
                        self.b.store(ptr, v, if is_float { Ty::F64 } else { Ty::I64 });
                    }
                    VarInfo::Array { .. } => {
                        return self.err(*line, format!("cannot assign to array `{name}` without an index"))
                    }
                }
            }
            Stmt::AssignIdx(name, idx, e, line) => {
                let info = self
                    .lookup(name)
                    .ok_or_else(|| FrontError { line: *line, msg: format!("unknown array `{name}`") })?;
                let VarInfo::Array { ptr, is_float } = info else {
                    return self.err(*line, format!("`{name}` is not an array"));
                };
                let (iv, ity) = self.lower_expr(idx)?;
                let iv = self.coerce_i(iv, ity);
                let addr = self.b.elem(ptr, iv);
                let (v, ty) = self.lower_expr(e)?;
                let v = if is_float { self.coerce_f(v, ty) } else { self.coerce_i(v, ty) };
                self.b.store(addr, v, if is_float { Ty::F64 } else { Ty::I64 });
            }
            Stmt::If(c, then, els, _line) => {
                let cond = self.lower_cond(c)?;
                let tb = self.b.add_block("if.then");
                let eb = self.b.add_block("if.else");
                let jb = self.b.add_block("if.end");
                self.b.cond_br(cond, tb, eb);
                self.b.switch_to(tb);
                self.scopes.push(HashMap::new());
                self.lower_stmts(then)?;
                self.scopes.pop();
                if !self.b.is_terminated() {
                    self.b.br(jb);
                }
                self.b.switch_to(eb);
                self.scopes.push(HashMap::new());
                self.lower_stmts(els)?;
                self.scopes.pop();
                if !self.b.is_terminated() {
                    self.b.br(jb);
                }
                self.b.switch_to(jb);
                // If both arms returned, the join block is unreachable; give
                // it a terminator so the function stays well-formed.
            }
            Stmt::While(c, body, _line) => {
                let hb = self.b.add_block("while.head");
                let bb = self.b.add_block("while.body");
                let eb = self.b.add_block("while.end");
                self.b.br(hb);
                self.b.switch_to(hb);
                let cond = self.lower_cond(c)?;
                self.b.cond_br(cond, bb, eb);
                self.b.switch_to(bb);
                self.scopes.push(HashMap::new());
                self.lower_stmts(body)?;
                self.scopes.pop();
                if !self.b.is_terminated() {
                    self.b.br(hb);
                }
                self.b.switch_to(eb);
            }
            Stmt::For(init, c, step, body, _line) => {
                self.scopes.push(HashMap::new());
                self.lower_stmt(init)?;
                let hb = self.b.add_block("for.head");
                let bb = self.b.add_block("for.body");
                let eb = self.b.add_block("for.end");
                self.b.br(hb);
                self.b.switch_to(hb);
                let cond = self.lower_cond(c)?;
                self.b.cond_br(cond, bb, eb);
                self.b.switch_to(bb);
                self.scopes.push(HashMap::new());
                self.lower_stmts(body)?;
                self.scopes.pop();
                if !self.b.is_terminated() {
                    self.lower_stmt(step)?;
                    self.b.br(hb);
                }
                self.scopes.pop();
                self.b.switch_to(eb);
            }
            Stmt::Return(e, _line) => {
                let want_float = self.def.ret == TypeAnn::Float;
                let v = match e {
                    Some(e) => {
                        let (v, ty) = self.lower_expr(e)?;
                        if want_float {
                            self.coerce_f(v, ty)
                        } else {
                            self.coerce_i(v, ty)
                        }
                    }
                    None => {
                        if want_float {
                            Operand::ConstF(0.0)
                        } else {
                            Operand::ConstI(0)
                        }
                    }
                };
                self.b.ret(Some(v));
            }
            Stmt::Expr(e, _line) => {
                self.lower_expr(e)?;
            }
            Stmt::PrintStr(s, _line) => {
                let id = self.module.add_string(s.clone());
                self.b.print_str(id);
            }
        }
        Ok(())
    }

    /// Lower an expression used as a branch condition into an `i1`.
    fn lower_cond(&mut self, e: &Expr) -> Result<Operand, FrontError> {
        let (v, ty) = self.lower_expr(e)?;
        Ok(match ty {
            ETy::B => v,
            ETy::I => self.b.icmp(IPred::Ne, v, Operand::ConstI(0)),
            ETy::F => self.b.fcmp(FPred::One, v, Operand::ConstF(0.0)),
        })
    }

    fn coerce_i(&mut self, v: Operand, ty: ETy) -> Operand {
        match ty {
            ETy::I => v,
            ETy::B => self.b.cast(CastOp::I1ToI64, v),
            ETy::F => self.b.cast(CastOp::FToSi, v),
        }
    }

    fn coerce_f(&mut self, v: Operand, ty: ETy) -> Operand {
        match ty {
            ETy::F => v,
            ETy::I => self.b.cast(CastOp::SiToF, v),
            ETy::B => {
                let i = self.b.cast(CastOp::I1ToI64, v);
                self.b.cast(CastOp::SiToF, i)
            }
        }
    }

    fn lower_expr(&mut self, e: &Expr) -> Result<(Operand, ETy), FrontError> {
        Ok(match e {
            Expr::Int(n, _) => (Operand::ConstI(*n), ETy::I),
            Expr::Float(x, _) => (Operand::ConstF(*x), ETy::F),
            Expr::Var(name, line) => {
                let info = self
                    .lookup(name)
                    .ok_or_else(|| FrontError { line: *line, msg: format!("unknown variable `{name}`") })?;
                match info {
                    VarInfo::Scalar { ptr, is_float } => {
                        let ty = if is_float { Ty::F64 } else { Ty::I64 };
                        (self.b.load(ptr, ty), if is_float { ETy::F } else { ETy::I })
                    }
                    VarInfo::Array { ptr, .. } => (ptr, ETy::I), // array decays to address
                }
            }
            Expr::Index(name, idx, line) => {
                let info = self
                    .lookup(name)
                    .ok_or_else(|| FrontError { line: *line, msg: format!("unknown array `{name}`") })?;
                let VarInfo::Array { ptr, is_float } = info else {
                    return self.err(*line, format!("`{name}` is not an array"));
                };
                let (iv, ity) = self.lower_expr(idx)?;
                let iv = self.coerce_i(iv, ity);
                let addr = self.b.elem(ptr, iv);
                let ty = if is_float { Ty::F64 } else { Ty::I64 };
                (self.b.load(addr, ty), if is_float { ETy::F } else { ETy::I })
            }
            Expr::Neg(inner, _) => {
                let (v, ty) = self.lower_expr(inner)?;
                match ty {
                    ETy::F => (self.b.fbin(FBinOp::Sub, Operand::ConstF(0.0), v), ETy::F),
                    _ => {
                        let vi = self.coerce_i(v, ty);
                        (self.b.ibin(IBinOp::Sub, Operand::ConstI(0), vi), ETy::I)
                    }
                }
            }
            Expr::Not(inner, _) => {
                let (v, ty) = self.lower_expr(inner)?;
                let b = match ty {
                    ETy::B => {
                        let z = self.b.cast(CastOp::I1ToI64, v);
                        self.b.icmp(IPred::Eq, z, Operand::ConstI(0))
                    }
                    ETy::I => self.b.icmp(IPred::Eq, v, Operand::ConstI(0)),
                    ETy::F => self.b.fcmp(FPred::Oeq, v, Operand::ConstF(0.0)),
                };
                (b, ETy::B)
            }
            Expr::Bin(op, l, r, line) => self.lower_bin(*op, l, r, *line)?,
            Expr::Call(name, args, line) => self.lower_call(name, args, *line)?,
        })
    }

    fn lower_bin(&mut self, op: BinOp, l: &Expr, r: &Expr, line: u32) -> Result<(Operand, ETy), FrontError> {
        let (lv, lt) = self.lower_expr(l)?;
        let (rv, rt) = self.lower_expr(r)?;

        if matches!(op, BinOp::LAnd | BinOp::LOr) {
            let lb = self.bool_of(lv, lt);
            let rb = self.bool_of(rv, rt);
            let li = self.b.cast(CastOp::I1ToI64, lb);
            let ri = self.b.cast(CastOp::I1ToI64, rb);
            let o = if op == BinOp::LAnd { IBinOp::And } else { IBinOp::Or };
            let v = self.b.ibin(o, li, ri);
            let b = self.b.icmp(IPred::Ne, v, Operand::ConstI(0));
            return Ok((b, ETy::B));
        }

        let float = lt == ETy::F || rt == ETy::F;
        if op.is_cmp() {
            return Ok(if float {
                let lf = self.coerce_f(lv, lt);
                let rf = self.coerce_f(rv, rt);
                (self.b.fcmp(fpred(op), lf, rf), ETy::B)
            } else {
                let li = self.coerce_i(lv, lt);
                let ri = self.coerce_i(rv, rt);
                (self.b.icmp(ipred(op), li, ri), ETy::B)
            });
        }

        if float {
            let fop = match op {
                BinOp::Add => FBinOp::Add,
                BinOp::Sub => FBinOp::Sub,
                BinOp::Mul => FBinOp::Mul,
                BinOp::Div => FBinOp::Div,
                _ => return self.err(line, format!("operator {op:?} requires integer operands")),
            };
            let lf = self.coerce_f(lv, lt);
            let rf = self.coerce_f(rv, rt);
            return Ok((self.b.fbin(fop, lf, rf), ETy::F));
        }

        let iop = match op {
            BinOp::Add => IBinOp::Add,
            BinOp::Sub => IBinOp::Sub,
            BinOp::Mul => IBinOp::Mul,
            BinOp::Div => IBinOp::Div,
            BinOp::Rem => IBinOp::Rem,
            BinOp::And => IBinOp::And,
            BinOp::Or => IBinOp::Or,
            BinOp::Xor => IBinOp::Xor,
            BinOp::Shl => IBinOp::Shl,
            BinOp::Shr => IBinOp::AShr,
            _ => unreachable!(),
        };
        let li = self.coerce_i(lv, lt);
        let ri = self.coerce_i(rv, rt);
        Ok((self.b.ibin(iop, li, ri), ETy::I))
    }

    fn bool_of(&mut self, v: Operand, t: ETy) -> Operand {
        match t {
            ETy::B => v,
            ETy::I => self.b.icmp(IPred::Ne, v, Operand::ConstI(0)),
            ETy::F => self.b.fcmp(FPred::One, v, Operand::ConstF(0.0)),
        }
    }

    fn lower_call(&mut self, name: &str, args: &[Expr], line: u32) -> Result<(Operand, ETy), FrontError> {
        // Builtins first.
        let builtin1: Option<Intrinsic> = match name {
            "sqrt" => Some(Intrinsic::Sqrt),
            "fabs" => Some(Intrinsic::Fabs),
            "exp" => Some(Intrinsic::Exp),
            "log" => Some(Intrinsic::Log),
            "sin" => Some(Intrinsic::Sin),
            "cos" => Some(Intrinsic::Cos),
            "floor" => Some(Intrinsic::Floor),
            _ => None,
        };
        if let Some(which) = builtin1 {
            if args.len() != 1 {
                return self.err(line, format!("{name} takes one argument"));
            }
            let (v, t) = self.lower_expr(&args[0])?;
            let vf = self.coerce_f(v, t);
            return Ok((self.b.intrinsic(which, vec![vf]).unwrap(), ETy::F));
        }
        let builtin2: Option<Intrinsic> = match name {
            "pow" => Some(Intrinsic::Pow),
            "fmin" => Some(Intrinsic::Fmin),
            "fmax" => Some(Intrinsic::Fmax),
            _ => None,
        };
        if let Some(which) = builtin2 {
            if args.len() != 2 {
                return self.err(line, format!("{name} takes two arguments"));
            }
            let (a, at) = self.lower_expr(&args[0])?;
            let af = self.coerce_f(a, at);
            let (b2, bt) = self.lower_expr(&args[1])?;
            let bf = self.coerce_f(b2, bt);
            return Ok((self.b.intrinsic(which, vec![af, bf]).unwrap(), ETy::F));
        }
        match name {
            "int" => {
                if args.len() != 1 {
                    return self.err(line, "int() takes one argument");
                }
                let (v, t) = self.lower_expr(&args[0])?;
                return Ok((self.coerce_i(v, t), ETy::I));
            }
            "float" => {
                if args.len() != 1 {
                    return self.err(line, "float() takes one argument");
                }
                let (v, t) = self.lower_expr(&args[0])?;
                return Ok((self.coerce_f(v, t), ETy::F));
            }
            "print_i" => {
                if args.len() != 1 {
                    return self.err(line, "print_i() takes one argument");
                }
                let (v, t) = self.lower_expr(&args[0])?;
                let vi = self.coerce_i(v, t);
                self.b.intrinsic(Intrinsic::PrintI64, vec![vi]);
                return Ok((Operand::ConstI(0), ETy::I));
            }
            "print_f" => {
                if args.len() != 1 {
                    return self.err(line, "print_f() takes one argument");
                }
                let (v, t) = self.lower_expr(&args[0])?;
                let vf = self.coerce_f(v, t);
                self.b.intrinsic(Intrinsic::PrintF64, vec![vf]);
                return Ok((Operand::ConstI(0), ETy::I));
            }
            _ => {}
        }
        // User function.
        let (fid, ptys, rty) = self
            .sigs
            .get(name)
            .cloned()
            .ok_or_else(|| FrontError { line, msg: format!("unknown function `{name}`") })?;
        if ptys.len() != args.len() {
            return self.err(
                line,
                format!("`{name}` expects {} arguments, got {}", ptys.len(), args.len()),
            );
        }
        let mut avs = Vec::with_capacity(args.len());
        for (a, pt) in args.iter().zip(&ptys) {
            let (v, t) = self.lower_expr(a)?;
            avs.push(match pt {
                TypeAnn::Float => self.coerce_f(v, t),
                TypeAnn::Int => self.coerce_i(v, t),
            });
        }
        let ret = self.b.call(fid, avs, Some(ir_ty(rty))).unwrap();
        Ok((ret, if rty == TypeAnn::Float { ETy::F } else { ETy::I }))
    }
}

fn ipred(op: BinOp) -> IPred {
    match op {
        BinOp::Eq => IPred::Eq,
        BinOp::Ne => IPred::Ne,
        BinOp::Lt => IPred::Slt,
        BinOp::Le => IPred::Sle,
        BinOp::Gt => IPred::Sgt,
        BinOp::Ge => IPred::Sge,
        _ => unreachable!("not a comparison"),
    }
}

fn fpred(op: BinOp) -> FPred {
    match op {
        BinOp::Eq => FPred::Oeq,
        BinOp::Ne => FPred::One,
        BinOp::Lt => FPred::Olt,
        BinOp::Le => FPred::Ole,
        BinOp::Gt => FPred::Ogt,
        BinOp::Ge => FPred::Oge,
        _ => unreachable!("not a comparison"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lex, parse};
    use refine_ir::interp::Interp;

    fn exec(src: &str) -> i64 {
        let m = lower_program(&parse(&lex(src).unwrap()).unwrap()).unwrap();
        refine_ir::verify::verify_module(&m).expect("verifies");
        Interp::new(&m, 10_000_000).run().expect("runs").exit_code
    }

    #[test]
    fn nested_control_flow() {
        let r = exec(
            "fn main() {\n\
               let s = 0;\n\
               for (i = 0; i < 10; i = i + 1) {\n\
                 if (i % 3 == 0) { s = s + i * 10; } else { s = s - 1; }\n\
               }\n\
               return s;\n\
             }",
        );
        // i=0,3,6,9 add 0+30+60+90=180; other 6 iterations subtract 6.
        assert_eq!(r, 174);
    }

    #[test]
    fn while_and_logical_ops() {
        let r = exec(
            "fn main() { let n = 0; let x = 1; while (x < 100 && n < 20) { x = x * 2; n = n + 1; } return n; }",
        );
        assert_eq!(r, 7); // 2^7 = 128 >= 100
    }

    #[test]
    fn recursion() {
        let r = exec("fn fact(n) { if (n <= 1) { return 1; } return n * fact(n - 1); } fn main() { return fact(10); }");
        assert_eq!(r, 3628800);
    }

    #[test]
    fn float_functions_and_promotion() {
        let r = exec(
            "fn norm(a: float, b: float): float { return sqrt(a * a + b * b); }\n\
             fn main() { return int(norm(3.0, 4)); }",
        );
        assert_eq!(r, 5);
    }

    #[test]
    fn shadowing_in_blocks() {
        let r = exec(
            "fn main() { let x = 1; if (1) { let x = 50; x = x + 1; } return x; }",
        );
        assert_eq!(r, 1, "inner let shadows, outer unchanged");
    }

    #[test]
    fn early_return_dead_code() {
        let r = exec("fn main() { return 9; let x = 1; return x; }");
        assert_eq!(r, 9);
    }

    #[test]
    fn both_arms_return() {
        let r = exec("fn f(x) { if (x > 0) { return 1; } else { return 2; } } fn main() { return f(0-5); }");
        assert_eq!(r, 2);
    }

    #[test]
    fn arrays_decay_is_not_supported_in_calls() {
        // Arrays may be read via index only; passing names around is just an
        // address (documented behaviour).
        let r = exec(
            "var a[4];\n\
             fn main() { a[2] = 42; let p = a; return a[2]; }",
        );
        assert_eq!(r, 42);
    }

    #[test]
    fn unary_not_and_neg() {
        let r = exec("fn main() { let x = 0 - 7; if (!(x == 0-7)) { return 1; } return -x; }");
        assert_eq!(r, 7);
    }

    #[test]
    fn type_errors_reported() {
        let src = "fn main() { let x: float = 1.0; return x % 2; }";
        let err = lower_program(&parse(&lex(src).unwrap()).unwrap()).unwrap_err();
        assert!(err.msg.contains("integer"), "{err}");
    }
}
