//! MiniLang lexer.

use crate::FrontError;

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal (contains `.` or exponent).
    Float(f64),
    /// String literal (no escapes except `\n` and `\"`).
    Str(String),
    /// One punctuation/operator token.
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// A token with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The kind and payload.
    pub kind: TokenKind,
    /// 1-based line number.
    pub line: u32,
}

const PUNCTS2: [&str; 9] = ["==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "->"];
const PUNCTS1: [&str; 18] = [
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "(", ")", "{", "}", "[", "]",
];

/// Lex a source string.
pub fn lex(src: &str) -> Result<Vec<Token>, FrontError> {
    let mut toks = Vec::new();
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '/' && i + 1 < b.len() && b[i + 1] == b'/' {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            toks.push(Token { kind: TokenKind::Ident(src[start..i].to_string()), line });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            while i < b.len() && b[i].is_ascii_digit() {
                i += 1;
            }
            if i < b.len() && b[i] == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit() {
                is_float = true;
                i += 1;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
            }
            if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
                let mut j = i + 1;
                if j < b.len() && (b[j] == b'+' || b[j] == b'-') {
                    j += 1;
                }
                if j < b.len() && b[j].is_ascii_digit() {
                    is_float = true;
                    i = j;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                }
            }
            let text = &src[start..i];
            let kind = if is_float {
                TokenKind::Float(text.parse().map_err(|_| FrontError {
                    line,
                    msg: format!("bad float literal {text}"),
                })?)
            } else {
                TokenKind::Int(text.parse().map_err(|_| FrontError {
                    line,
                    msg: format!("bad integer literal {text}"),
                })?)
            };
            toks.push(Token { kind, line });
            continue;
        }
        if c == '"' {
            i += 1;
            let mut s = String::new();
            loop {
                if i >= b.len() {
                    return Err(FrontError { line, msg: "unterminated string".into() });
                }
                match b[i] {
                    b'"' => {
                        i += 1;
                        break;
                    }
                    b'\\' if i + 1 < b.len() => {
                        match b[i + 1] {
                            b'n' => s.push('\n'),
                            b'"' => s.push('"'),
                            b'\\' => s.push('\\'),
                            other => {
                                return Err(FrontError {
                                    line,
                                    msg: format!("bad escape \\{}", other as char),
                                })
                            }
                        }
                        i += 2;
                    }
                    other => {
                        s.push(other as char);
                        i += 1;
                    }
                }
            }
            toks.push(Token { kind: TokenKind::Str(s), line });
            continue;
        }
        // Punctuation: 2-byte operators first. Compare as bytes so
        // multi-byte UTF-8 input cannot cause mid-character slicing.
        if i + 1 < b.len() {
            let two = &b[i..i + 2];
            if let Some(p) = PUNCTS2.iter().find(|p| p.as_bytes() == two) {
                toks.push(Token { kind: TokenKind::Punct(p), line });
                i += 2;
                continue;
            }
        }
        let one = &b[i..i + 1];
        if let Some(p) = PUNCTS1.iter().find(|p| p.as_bytes() == one) {
            toks.push(Token { kind: TokenKind::Punct(p), line });
            i += 1;
            continue;
        }
        match c {
            ';' => toks.push(Token { kind: TokenKind::Punct(";"), line }),
            ',' => toks.push(Token { kind: TokenKind::Punct(","), line }),
            ':' => toks.push(Token { kind: TokenKind::Punct(":"), line }),
            _ => {
                // Report the whole (possibly multi-byte) character.
                let ch = src[i..].chars().next().unwrap_or('?');
                return Err(FrontError { line, msg: format!("unexpected character {ch:?}") });
            }
        }
        i += 1;
    }
    toks.push(Token { kind: TokenKind::Eof, line });
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_mixed_tokens() {
        let k = kinds("fn f(x) { return x + 1.5e2; } // comment");
        assert!(k.contains(&TokenKind::Ident("fn".into())));
        assert!(k.contains(&TokenKind::Float(150.0)));
        assert!(k.contains(&TokenKind::Punct("+")));
        assert_eq!(*k.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn two_char_operators_win() {
        let k = kinds("a <= b == c << 2");
        assert!(k.contains(&TokenKind::Punct("<=")));
        assert!(k.contains(&TokenKind::Punct("==")));
        assert!(k.contains(&TokenKind::Punct("<<")));
    }

    #[test]
    fn string_literals_with_escapes() {
        let k = kinds(r#"print_s("a\nb\"c")"#);
        assert!(k.contains(&TokenKind::Str("a\nb\"c".into())));
    }

    #[test]
    fn line_numbers_tracked() {
        let toks = lex("a\nb\nc").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn integer_vs_float() {
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
        assert_eq!(kinds("42.5")[0], TokenKind::Float(42.5));
        assert_eq!(kinds("1e3")[0], TokenKind::Float(1000.0));
        // MiniLang requires a digit after the decimal point; a bare `.` is
        // not a token at all.
        assert!(lex("7 .").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("let $x = 1;").is_err());
        assert!(lex("\"unterminated").is_err());
    }
}
