//! MiniLang abstract syntax tree.

/// Scalar types of the language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeAnn {
    /// 64-bit integer (the default).
    Int,
    /// binary64 float.
    Float,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>` (arithmetic)
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// Non-short-circuit logical and.
    LAnd,
    /// Non-short-circuit logical or.
    LOr,
}

impl BinOp {
    /// True for comparison operators (result is boolean-int).
    pub fn is_cmp(self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
    }
}

/// Expressions, each carrying the source line for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64, u32),
    /// Float literal.
    Float(f64, u32),
    /// Scalar variable read.
    Var(String, u32),
    /// Array element read `name[idx]`.
    Index(String, Box<Expr>, u32),
    /// Function or builtin call.
    Call(String, Vec<Expr>, u32),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>, u32),
    /// Unary negation.
    Neg(Box<Expr>, u32),
    /// Logical not.
    Not(Box<Expr>, u32),
}

impl Expr {
    /// Source line of the expression.
    pub fn line(&self) -> u32 {
        match self {
            Expr::Int(_, l)
            | Expr::Float(_, l)
            | Expr::Var(_, l)
            | Expr::Index(_, _, l)
            | Expr::Call(_, _, l)
            | Expr::Bin(_, _, _, l)
            | Expr::Neg(_, l)
            | Expr::Not(_, l) => *l,
        }
    }
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let name [: ty] = expr;`
    Let(String, Option<TypeAnn>, Expr, u32),
    /// `let name = array(n);` / `farray(n)` — stack array declaration.
    LetArr(String, u32, bool, u32),
    /// `name = expr;`
    Assign(String, Expr, u32),
    /// `name[idx] = expr;`
    AssignIdx(String, Expr, Expr, u32),
    /// `if (c) { .. } [else { .. }]`
    If(Expr, Vec<Stmt>, Vec<Stmt>, u32),
    /// `while (c) { .. }`
    While(Expr, Vec<Stmt>, u32),
    /// `for (name = e; c; name = e2) { .. }` — `name` is a scalar that must
    /// already exist or is implicitly declared as int.
    For(Box<Stmt>, Expr, Box<Stmt>, Vec<Stmt>, u32),
    /// `return [expr];`
    Return(Option<Expr>, u32),
    /// Expression statement (calls for effect).
    Expr(Expr, u32),
    /// `print_s("lit");`
    PrintStr(String, u32),
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FnDef {
    /// Name.
    pub name: String,
    /// `(name, type)` parameters.
    pub params: Vec<(String, TypeAnn)>,
    /// Return type; `None` for implicit int functions that return nothing
    /// meaningful (MiniLang functions always return int 0 by default).
    pub ret: TypeAnn,
    /// Body.
    pub body: Vec<Stmt>,
    /// Source line.
    pub line: u32,
}

/// A global declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDef {
    /// Name.
    pub name: String,
    /// Element count (1 for scalars).
    pub words: u32,
    /// Float array/scalar (`fvar`) vs int (`var`).
    pub is_float: bool,
    /// True when declared with `name[N]` (indexable).
    pub is_array: bool,
    /// Source line.
    pub line: u32,
}

/// A whole program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Globals in declaration order (memory layout order).
    pub globals: Vec<GlobalDef>,
    /// Functions in declaration order.
    pub funcs: Vec<FnDef>,
}
