//! Frontend robustness: the lexer/parser/lowerer must never panic — every
//! input either compiles to verified IR or returns a diagnostic with a line
//! number.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup never panics the frontend.
    #[test]
    fn prop_no_panic_on_arbitrary_input(src in "\\PC{0,200}") {
        let _ = refine_frontend::compile_source(&src);
    }

    /// Token-shaped soup (identifiers, numbers, punctuation) never panics.
    #[test]
    fn prop_no_panic_on_token_soup(
        toks in proptest::collection::vec(
            prop_oneof![
                Just("fn".to_string()),
                Just("let".to_string()),
                Just("if".to_string()),
                Just("while".to_string()),
                Just("for".to_string()),
                Just("return".to_string()),
                Just("var".to_string()),
                Just("fvar".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just("{".to_string()),
                Just("}".to_string()),
                Just("[".to_string()),
                Just("]".to_string()),
                Just(";".to_string()),
                Just("=".to_string()),
                Just("+".to_string()),
                Just("x".to_string()),
                Just("main".to_string()),
                Just("1".to_string()),
                Just("2.5".to_string()),
            ],
            0..60,
        )
    ) {
        let src = toks.join(" ");
        let _ = refine_frontend::compile_source(&src);
    }

    /// Well-formed single-function programs always verify when they compile.
    #[test]
    fn prop_compiled_programs_verify(
        n in 1i64..50,
        k in 1i64..20,
        use_float in any::<bool>(),
    ) {
        let body = if use_float {
            format!(
                "let s: float = 0.0; for (i = 0; i < {n}; i = i + 1) {{ s = s + float(i) * {k}.5; }} print_f(s); return int(s);"
            )
        } else {
            format!(
                "let s = 0; for (i = 0; i < {n}; i = i + 1) {{ s = s + i * {k}; }} print_i(s); return s;"
            )
        };
        let src = format!("fn main() {{ {body} }}");
        let m = refine_frontend::compile_source(&src).expect("well-formed program compiles");
        refine_ir::verify::verify_module(&m).expect("compiled module verifies");
        // And it runs without trapping.
        let r = refine_ir::interp::Interp::new(&m, 1_000_000).run().expect("runs");
        prop_assert!(r.output.len() == 1);
    }
}
