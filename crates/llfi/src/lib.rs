#![warn(missing_docs)]

//! `refine-llfi` — the LLFI-style IR-level fault injector, the paper's
//! compiler-based state-of-the-art baseline.
//!
//! Faithfully reproduced properties (§3.3):
//!
//! * instrumentation happens at the **IR level, after IR optimization**
//!   (LLFI's documented build flow: sources -> IR -> `opt -O3` -> LLFI
//!   instrument -> native codegen);
//! * every selected IR instruction's *result* is routed through an
//!   `injectFault` **function call** whose return value replaces the
//!   original SSA value;
//! * consequences emerge organically in the shared backend: the calls pin
//!   values across call boundaries (caller-saved clobbering -> spills),
//!   defeat addressing-mode folding (the `PtrAdd` result now escapes into a
//!   call) and compare+branch fusion (the branch consumes the call's result,
//!   not the `icmp`) — the exact degradations of the paper's Listing 2c;
//! * the injector never sees machine-only instructions (prologue/epilogue,
//!   spill traffic, `FLAGS` outputs), which is the accuracy gap measured in
//!   the paper's Figure 4/Table 5.

use refine_core::Compiled;
use refine_ir::passes::OptLevel;
use refine_ir::{Instr, Module, Operand, ValueId};

/// Which IR instructions LLFI instruments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LlfiClass {
    /// Arithmetic and comparisons only.
    Arith,
    /// Loads only.
    Mem,
    /// Every value-producing instruction (LLFI's `allinstructions`).
    #[default]
    All,
}

/// LLFI configuration.
#[derive(Debug, Clone, Default)]
pub struct LlfiOptions {
    /// Instruction-type selection.
    pub class: LlfiClass,
}

impl LlfiOptions {
    /// Stable fingerprint of this configuration for the campaign engine's
    /// instrumented-artifact cache (see [`refine_core::FiOptions::fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        refine_core::fnv1a(match self.class {
            LlfiClass::Arith => b"llfi:arith",
            LlfiClass::Mem => b"llfi:mem",
            LlfiClass::All => b"llfi:all",
        })
    }
}

/// Description of one instrumented IR site.
#[derive(Debug, Clone)]
pub struct LlfiSite {
    /// Site id (passed to `injectFault`).
    pub id: u64,
    /// Containing function name.
    pub func: String,
    /// Flip width in bits (1 for `i1`, 64 otherwise).
    pub bits: u32,
    /// IR opcode of the instrumented instruction (trace provenance).
    pub opcode: String,
}

/// Short IR opcode label for an instrumented instruction.
fn ir_opcode(i: &Instr) -> String {
    match i {
        Instr::IBin { op, .. } => format!("{op:?}").to_lowercase(),
        Instr::FBin { op, .. } => format!("f{op:?}").to_lowercase(),
        Instr::ICmp { .. } => "icmp".to_string(),
        Instr::FCmp { .. } => "fcmp".to_string(),
        Instr::Select { .. } => "select".to_string(),
        Instr::Cast { .. } => "cast".to_string(),
        Instr::Load { .. } => "load".to_string(),
        Instr::PtrAdd { .. } => "ptradd".to_string(),
        Instr::Call { .. } => "call".to_string(),
        Instr::IntrinsicCall { .. } => "intrinsic".to_string(),
        _ => "other".to_string(),
    }
}

fn instrumentable(i: &Instr, class: LlfiClass) -> bool {
    let arith = matches!(
        i,
        Instr::IBin { .. }
            | Instr::FBin { .. }
            | Instr::ICmp { .. }
            | Instr::FCmp { .. }
            | Instr::Select { .. }
            | Instr::Cast { .. }
    );
    let mem = matches!(i, Instr::Load { .. });
    let other = matches!(
        i,
        Instr::PtrAdd { .. } | Instr::Call { .. } | Instr::IntrinsicCall { .. }
    );
    match class {
        LlfiClass::Arith => arith,
        LlfiClass::Mem => mem,
        LlfiClass::All => arith || mem || other,
    }
}

/// Instrument `m` in place (post-optimization IR). Returns site metadata.
pub fn instrument(m: &mut Module, opts: &LlfiOptions) -> Vec<LlfiSite> {
    let _span = refine_telemetry::Span::enter(refine_telemetry::Phase::FiLlfiPass);
    let mut sites = Vec::new();
    let mut next_id = 0u64;
    for f in &mut m.funcs {
        let fname = f.name.clone();
        for bi in 0..f.blocks.len() {
            let old = std::mem::take(&mut f.blocks[bi].instrs);
            let mut neu = Vec::with_capacity(old.len() * 2);
            // value -> replacement, applied to later uses everywhere.
            let mut replaced: Vec<(ValueId, ValueId)> = Vec::new();
            for id in old {
                let inject = match (id.result, instrumentable(&id.instr, opts.class)) {
                    (Some(res), true) => Some((res, f.ty_of(res), ir_opcode(&id.instr))),
                    _ => None,
                };
                neu.push(id);
                if let Some((res, ty, opcode)) = inject {
                    let new_val = f.new_value(f.ty_of(res));
                    let site = next_id;
                    next_id += 1;
                    sites.push(LlfiSite { id: site, func: fname.clone(), bits: ty.bits(), opcode });
                    neu.push(refine_ir::module::InstrData {
                        instr: Instr::LlfiInject { site, val: Operand::Value(res), ty },
                        result: Some(new_val),
                    });
                    replaced.push((res, new_val));
                }
            }
            f.blocks[bi].instrs = neu;
            // Rewrite all uses (later in this block, other blocks, phis,
            // terminators) — but not the inject's own operand.
            for (old_v, new_v) in replaced {
                rewrite_uses(f, old_v, new_v);
            }
        }
    }
    sites
}

fn rewrite_uses(f: &mut refine_ir::Function, old: ValueId, new: ValueId) {
    for b in &mut f.blocks {
        for id in &mut b.instrs {
            // Skip the injector that consumes the original value.
            if let Instr::LlfiInject { val, .. } = &id.instr {
                if val.as_value() == Some(old) && id.result == Some(new) {
                    continue;
                }
            }
            id.instr.for_each_operand_mut(&mut |op| {
                if op.as_value() == Some(old) {
                    *op = Operand::Value(new);
                }
            });
        }
        if let Some(t) = &mut b.term {
            t.for_each_operand_mut(&mut |op| {
                if op.as_value() == Some(old) {
                    *op = Operand::Value(new);
                }
            });
        }
    }
}

/// Compile with the LLFI flow: optimize, instrument the optimized IR, then
/// hand the (structurally different) module to the unmodified backend.
pub fn compile_with_llfi(m: &Module, level: OptLevel, opts: &LlfiOptions) -> (Compiled, Vec<LlfiSite>) {
    let mut m = m.clone();
    refine_ir::passes::optimize(&mut m, level);
    let sites = instrument(&mut m, opts);
    debug_assert!(refine_ir::verify::verify_module(&m).is_ok());
    // The backend runs with FI disabled: LLFI's instrumentation is already
    // inside the IR.
    let compiled = refine_core::compile_with_fi(&m, OptLevel::O0, &refine_core::FiOptions::default());
    (compiled, sites)
}

#[cfg(test)]
mod tests {
    use super::*;
    use refine_core::ProfilingRt;
    use refine_ir::interp::Interp;
    use refine_machine::{Machine, NoFi, RunConfig, RunOutcome};

    fn demo() -> Module {
        refine_frontend::compile_source(
            "fvar v[16];\n\
             fn main() {\n\
               for (i = 0; i < 16; i = i + 1) { v[i] = float(i) + 0.25; }\n\
               let s: float = 0.0;\n\
               for (i = 0; i < 16; i = i + 1) { s = s + v[i] * 2.0; }\n\
               print_f(s);\n\
               return 0;\n\
             }",
        )
        .unwrap()
    }

    #[test]
    fn instrumentation_preserves_semantics_without_faults() {
        let mut m = demo();
        refine_ir::passes::optimize(&mut m, OptLevel::O2);
        let golden = Interp::new(&m, 1_000_000).run().unwrap();
        let sites = instrument(&mut m, &LlfiOptions::default());
        assert!(!sites.is_empty());
        refine_ir::verify::verify_module(&m).expect("instrumented IR verifies");
        let after = Interp::new(&m, 10_000_000).run().unwrap();
        assert_eq!(golden.output, after.output);
        assert_eq!(golden.exit_code, after.exit_code);
    }

    #[test]
    fn compiled_llfi_binary_runs_golden_in_profiling_mode() {
        let m = demo();
        let plain = refine_core::compile_with_fi(&m, OptLevel::O2, &refine_core::FiOptions::default());
        let golden = Machine::run(&plain.binary, &RunConfig::default(), &mut NoFi, None);

        let (c, sites) = compile_with_llfi(&m, OptLevel::O2, &LlfiOptions::default());
        assert!(!sites.is_empty());
        let mut prof = ProfilingRt::default();
        let r = Machine::run(&c.binary, &RunConfig::default(), &mut prof, None);
        assert_eq!(r.outcome, RunOutcome::Exit(0));
        assert_eq!(r.output, golden.output);
        assert!(prof.count > 0, "injectFault must be called dynamically");
        // Code-generation interference: the LLFI binary is much slower than
        // the clean one (Listing 2c vs 2b).
        assert!(
            r.cycles > golden.cycles * 3,
            "LLFI binary too fast: {} vs {}",
            r.cycles,
            golden.cycles
        );
    }

    /// The LLFI dynamic population is a strict subset: it never sees
    /// prologue/epilogue, spills, movs, flags — so its count is well below
    /// the machine-level FI target count of the clean binary.
    #[test]
    fn ir_population_smaller_than_machine_population() {
        let m = demo();
        let plain = refine_core::compile_with_fi(&m, OptLevel::O2, &refine_core::FiOptions::default());
        let mut counting = refine_machine::probe::CountingProbe::new(|i| {
            !refine_machine::fi_outputs(i).is_empty()
        });
        Machine::run(&plain.binary, &RunConfig::default(), &mut NoFi, Some(&mut counting));

        let (c, _) = compile_with_llfi(&m, OptLevel::O2, &LlfiOptions::default());
        let mut prof = ProfilingRt::default();
        Machine::run(&c.binary, &RunConfig::default(), &mut prof, None);
        assert!(
            prof.count < counting.count,
            "IR population ({}) must be smaller than machine population ({})",
            prof.count,
            counting.count
        );
    }

    #[test]
    fn injection_changes_behaviour_sometimes() {
        let m = demo();
        let (c, _) = compile_with_llfi(&m, OptLevel::O2, &LlfiOptions::default());
        let mut prof = ProfilingRt::default();
        let golden = Machine::run(&c.binary, &RunConfig::default(), &mut prof, None);
        let total = prof.count;
        let mut changed = 0;
        for k in 0..12u64 {
            let mut inj = refine_core::InjectingRt::new(1 + (total * k / 12), k * 31 + 1);
            let r = Machine::run(
                &c.binary,
                &RunConfig { max_cycles: golden.cycles * 10, stack_words: 1 << 16 },
                &mut inj,
                None,
            );
            if r.outcome != RunOutcome::Exit(0) || r.output != golden.output {
                changed += 1;
            }
        }
        assert!(changed > 0, "at least one IR-level fault must matter");
    }

    #[test]
    fn class_filters_restrict_sites() {
        let mut all = demo();
        refine_ir::passes::optimize(&mut all, OptLevel::O2);
        let mut arith = all.clone();
        let mut mem = all.clone();
        let n_all = instrument(&mut all, &LlfiOptions { class: LlfiClass::All }).len();
        let n_arith = instrument(&mut arith, &LlfiOptions { class: LlfiClass::Arith }).len();
        let n_mem = instrument(&mut mem, &LlfiOptions { class: LlfiClass::Mem }).len();
        assert!(n_arith < n_all);
        assert!(n_mem < n_arith);
        assert!(n_mem > 0);
    }
}
