#!/usr/bin/env bash
# Full local CI: release build, test suite, and lint-clean clippy.
# All cargo invocations run --offline against the vendored workspace deps.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release"
cargo build --release --offline

echo "== cargo test"
cargo test -q --offline

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cross-jobs determinism (--jobs 1 vs --jobs 4)"
# The outcome tables must be bit-identical at any worker count; diff the
# stdout tables of a short sweep run serially and sharded.
EXP=target/release/refine-experiments
J1="$($EXP table6 --trials 12 --apps HPCCG-1.0,CoMD --seed 7 --jobs 1 --quiet 2>/dev/null)"
J4="$($EXP table6 --trials 12 --apps HPCCG-1.0,CoMD --seed 7 --jobs 4 --quiet 2>/dev/null)"
if [ "$J1" != "$J4" ]; then
    echo "determinism check FAILED: --jobs 1 and --jobs 4 outputs differ" >&2
    diff <(printf '%s\n' "$J1") <(printf '%s\n' "$J4") >&2 || true
    exit 1
fi
echo "   identical tables at both job counts"

echo "== checkpoint equivalence (default vs --no-checkpoint)"
# Trial fast-forward must be invisible in every output: diff a short sweep
# with checkpointing on (default) against the exact interpreter path.
CK="$($EXP table6 --trials 12 --apps HPCCG-1.0,CoMD --seed 7 --jobs 4 --quiet 2>/dev/null)"
NC="$($EXP table6 --trials 12 --apps HPCCG-1.0,CoMD --seed 7 --jobs 4 --quiet --no-checkpoint 2>/dev/null)"
if [ "$CK" != "$NC" ]; then
    echo "checkpoint equivalence FAILED: default and --no-checkpoint outputs differ" >&2
    diff <(printf '%s\n' "$CK") <(printf '%s\n' "$NC") >&2 || true
    exit 1
fi
echo "   identical tables with checkpointing on and off"

echo "== convergence equivalence (default vs --no-convergence)"
# The golden-convergence early exit must be invisible too: diff the same
# sweep with the detector armed (default) against checkpoint-only trials.
NV="$($EXP table6 --trials 12 --apps HPCCG-1.0,CoMD --seed 7 --jobs 4 --quiet --no-convergence 2>/dev/null)"
if [ "$CK" != "$NV" ]; then
    echo "convergence equivalence FAILED: default and --no-convergence outputs differ" >&2
    diff <(printf '%s\n' "$CK") <(printf '%s\n' "$NV") >&2 || true
    exit 1
fi
echo "   identical tables with convergence on and off"

echo "== engine equivalence (default superblock vs --engine step)"
# The superblock-fused engine must be invisible in every output: diff the
# same sweep against the per-instruction exact interpreter.
ST="$($EXP table6 --trials 12 --apps HPCCG-1.0,CoMD --seed 7 --jobs 4 --quiet --engine step 2>/dev/null)"
if [ "$CK" != "$ST" ]; then
    echo "engine equivalence FAILED: superblock and step outputs differ" >&2
    diff <(printf '%s\n' "$CK") <(printf '%s\n' "$ST") >&2 || true
    exit 1
fi
echo "   identical tables under both engines"

echo "== trial_throughput bench (smoke)"
# Fails on its own if the on/off sweeps mismatch or the superblock engine
# loses its cold speedup; records trials/sec in BENCH_trials.json.
REFINE_SMOKE=1 cargo bench -q --offline -p refine-bench --bench trial_throughput

echo "== perf floor gate (cold trials/sec vs BENCH_floor.json)"
# Fail when the cold (checkpoint-off, superblock) throughput regresses more
# than the committed tolerance below the committed floor.
python3 - <<'PYGATE'
import json, sys
floor = json.load(open("BENCH_floor.json"))
bench = json.load(open("BENCH_trials.json"))
metric = floor["metric"]
actual = bench[metric]
limit = floor["floor_trials_per_sec"] * floor["tolerance"]
print(f"   {metric}: measured {actual:.0f} trials/s, gate {limit:.0f} trials/s")
if actual < limit:
    sys.exit(f"perf floor gate FAILED: {actual:.0f} < {limit:.0f} trials/s")
PYGATE

echo "CI OK"
