#!/usr/bin/env bash
# Full local CI: release build, test suite, and lint-clean clippy.
# All cargo invocations run --offline against the vendored workspace deps.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release"
cargo build --release --offline

echo "== cargo test"
cargo test -q --offline

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cross-jobs determinism (--jobs 1 vs --jobs 4)"
# The outcome tables must be bit-identical at any worker count; diff the
# stdout tables of a short sweep run serially and sharded.
EXP=target/release/refine-experiments
J1="$($EXP table6 --trials 12 --apps HPCCG-1.0,CoMD --seed 7 --jobs 1 --quiet 2>/dev/null)"
J4="$($EXP table6 --trials 12 --apps HPCCG-1.0,CoMD --seed 7 --jobs 4 --quiet 2>/dev/null)"
if [ "$J1" != "$J4" ]; then
    echo "determinism check FAILED: --jobs 1 and --jobs 4 outputs differ" >&2
    diff <(printf '%s\n' "$J1") <(printf '%s\n' "$J4") >&2 || true
    exit 1
fi
echo "   identical tables at both job counts"

echo "CI OK"
