#!/usr/bin/env bash
# Full local CI: release build, test suite, and lint-clean clippy.
# All cargo invocations run --offline against the vendored workspace deps.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release"
cargo build --release --offline

echo "== cargo test"
cargo test -q --offline

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "CI OK"
